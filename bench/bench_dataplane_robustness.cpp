// Data-plane robustness sweep: diagnosis accuracy vs injected FABRIC
// faults — PFC pause/resume frame loss and link flap trains — as opposed
// to bench_robustness's telemetry-pipeline faults.
//
// Two series over all six crafted scenarios:
//   axis "pfc_loss" — every PFC frame on the wire is eaten with prob p
//   axis "flap"     — a link on the victim path flaps once per period
//                     (100 us outages, seeded jitter; the runner binds the
//                     placeholder spec to the crafted victim's route)
//
// Each run is classified against the injected fault truth in RunResult:
//   correct          — true positive despite the faults
//   degraded         — wrong/missing verdict, explicitly flagged degraded
//   fault_attributed — wrong/missing verdict, not flagged, but an injected
//                      data-plane fault actually fired ON THE VICTIM'S
//                      FORWARDING PATH: the miss is attributable to the
//                      experiment's own sabotage (off-path faults don't
//                      excuse anything)
//   misclassified    — wrong verdict, full confidence, nothing to blame
//   missed           — no verdict, no flag, nothing to blame
//
// The acceptance bar this bench enforces (exit code 1 on violation): NO
// silently-wrong verdicts — misclassified + missed must be zero at every
// point. Results go to BENCH_dataplane.json (HAWKEYE_BENCH_JSON overrides).
//
// `--smoke` shrinks the grid for CI: one seed, two points per axis.
#include <cstring>

#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct DataplaneStats {
  int correct = 0, degraded = 0, fault_attributed = 0;
  int misclassified = 0, missed = 0;
  int runs = 0;
  double coverage = 0, confidence = 0, repolls = 0;
  double link_down_drops = 0, pfc_frames_lost = 0, pfc_loss_drops = 0;

  void add(const eval::RunResult& r) {
    ++runs;
    coverage += r.collection_coverage;
    confidence += r.confidence;
    repolls += static_cast<double>(r.repolls);
    link_down_drops += static_cast<double>(r.link_down_drops);
    pfc_frames_lost +=
        static_cast<double>(r.pfc_pause_lost + r.pfc_resume_lost);
    pfc_loss_drops += static_cast<double>(r.pfc_loss_drops);
    // Attribution is victim-path-aware (PR 4): a fault only excuses a bad
    // verdict when it actually fired on the diagnosed flow's forwarding
    // path (or was a port-global PFC frame fault). An off-path flap that
    // merely coincided with a wrong verdict counts as a real miss.
    if (r.tp) {
      ++correct;
    } else if (r.degraded) {
      ++degraded;
    } else if (r.dataplane_fault_fired && r.fault_on_victim_path) {
      ++fault_attributed;
    } else if (r.fp) {
      ++misclassified;
    } else {
      ++missed;
    }
  }
  int silent() const { return misclassified + missed; }
  double avg(double sum) const { return runs == 0 ? 0 : sum / runs; }
};

fault::FaultPlan flap_plan(sim::Time period) {
  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;  // unbound: the runner pins it to the victim path
  flap.start = sim::us(100);
  flap.down_ns = sim::us(100);
  flap.period_ns = period;
  flap.jitter = 0.5;
  plan.link_flaps.push_back(flap);
  return plan;
}

struct Point {
  const char* axis;
  double value;  // loss probability, or flap period in us
  fault::FaultPlan plan;
};

int run_axis(const std::vector<Point>& points, int n, std::string& json,
             bool& first_point) {
  int silent_total = 0;
  for (const Point& pt : points) {
    std::printf("\n--- %s = %g ---\n", pt.axis, pt.value);
    std::printf("%-26s %-8s %-9s %-12s %-14s %-7s %-9s %-11s\n", "scenario",
                "correct", "degraded", "fault_attr", "misclassified", "missed",
                "coverage", "confidence");
    DataplaneStats total;
    for (const auto type : all_anomalies()) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.faults = pt.plan;
      DataplaneStats st;
      std::string name;
      for (const eval::RunResult& r :
           eval::run_sweep(eval::seed_sweep(cfg, n))) {
        st.add(r);
        total.add(r);
        name = r.scenario_name;
      }
      std::printf("%-26s %-8d %-9d %-12d %-14d %-7d %-9.2f %-11.2f\n",
                  name.c_str(), st.correct, st.degraded, st.fault_attributed,
                  st.misclassified, st.missed, st.avg(st.coverage),
                  st.avg(st.confidence));
      if (!first_point) json += ",\n";
      first_point = false;
      json += "    {\"axis\": \"" + std::string(pt.axis) + "\"" +
              ", \"value\": " + std::to_string(pt.value) +
              ", \"scenario\": \"" + name + "\"" +
              ", \"correct\": " + std::to_string(st.correct) +
              ", \"degraded\": " + std::to_string(st.degraded) +
              ", \"fault_attributed\": " +
              std::to_string(st.fault_attributed) +
              ", \"misclassified\": " + std::to_string(st.misclassified) +
              ", \"missed\": " + std::to_string(st.missed) +
              ", \"runs\": " + std::to_string(st.runs) +
              ", \"avg_coverage\": " + std::to_string(st.avg(st.coverage)) +
              ", \"avg_confidence\": " + std::to_string(st.avg(st.confidence)) +
              ", \"avg_repolls\": " + std::to_string(st.avg(st.repolls)) +
              ", \"avg_link_down_drops\": " +
              std::to_string(st.avg(st.link_down_drops)) +
              ", \"avg_pfc_frames_lost\": " +
              std::to_string(st.avg(st.pfc_frames_lost)) +
              ", \"avg_pfc_loss_drops\": " +
              std::to_string(st.avg(st.pfc_loss_drops)) + "}";
    }
    std::printf("%-26s %-8d %-9d %-12d %-14d %-7d %-9.2f %-11.2f\n", "TOTAL",
                total.correct, total.degraded, total.fault_attributed,
                total.misclassified, total.missed, total.avg(total.coverage),
                total.avg(total.confidence));
    silent_total += total.silent();
  }
  return silent_total;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header("Data-plane robustness",
               "diagnosis accuracy vs PFC frame loss and link flap rate");
  const int n = smoke ? 1 : seeds_per_point();

  std::vector<Point> points;
  const std::vector<double> loss_rates =
      smoke ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.10, 0.25, 0.50};
  for (const double rate : loss_rates) {
    Point pt;
    pt.axis = "pfc_loss";
    pt.value = rate;
    if (rate > 0) pt.plan = fault::FaultPlan::uniform_pfc_loss(rate, 1);
    points.push_back(pt);
  }
  const std::vector<sim::Time> periods =
      smoke ? std::vector<sim::Time>{sim::us(500)}
            : std::vector<sim::Time>{sim::us(1000), sim::us(500), sim::us(250)};
  for (const sim::Time period : periods) {
    Point pt;
    pt.axis = "flap_period_us";
    pt.value = static_cast<double>(period) / 1000.0;
    pt.plan = flap_plan(period);
    points.push_back(pt);
  }

  std::string json =
      "{\n  \"bench\": \"dataplane_robustness\",\n  \"seeds_per_point\": " +
      std::to_string(n) + ",\n  \"points\": [\n";
  bool first_point = true;
  const int silent = run_axis(points, n, json, first_point);
  json += "\n  ]\n}\n";

  const char* path = std::getenv("HAWKEYE_BENCH_JSON");
  const std::string out = path != nullptr ? path : "BENCH_dataplane.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }
  if (silent > 0) {
    std::printf("FAIL: %d silently-wrong verdict(s) — every miss must be "
                "flagged degraded or attributed to an injected fault\n",
                silent);
    return 1;
  }
  std::printf("OK: no silently-wrong verdicts\n");
  return 0;
}
