// Extension experiment (paper §1/§2.1): "even with fine-grained congestion
// control, PFC cannot be fully eliminated and still occurs frequently."
// The same incast trace is replayed under no end-to-end CC, DCQCN and a
// TIMELY-style RTT-gradient CC; the PFC PAUSE frames generated and the
// victim's degradation quantify how much (and how little) CC helps.
#include "bench_common.hpp"
#include "eval/testbed.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct CcResult {
  std::uint64_t pause_frames = 0;
  double victim_max_over_min_rtt = 0;
  double avg_burst_fct_us = 0;
};

CcResult run_case(device::CcAlgorithm algo, std::uint64_t seed) {
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(diagnosis::AnomalyType::kMicroBurstIncast,
                                   probe, pr, rng);
  }
  eval::Testbed::Options opts;
  opts.install_hawkeye = false;
  opts.dcqcn.algo = algo;
  opts.dcqcn.enabled = algo != device::CcAlgorithm::kNone;
  eval::Testbed tb(opts);
  tb.install(spec);
  tb.run_for(spec.duration);

  CcResult r;
  for (const net::NodeId sw : tb.ft.topo.switches()) {
    r.pause_frames += tb.switch_at(sw).pause_frames_sent();
  }
  int bursts = 0;
  for (const net::NodeId h : tb.ft.hosts) {
    for (const auto& st : tb.host(h).flow_stats()) {
      if (st.tuple == spec.victim && st.min_rtt > 0) {
        r.victim_max_over_min_rtt =
            static_cast<double>(st.max_rtt) / static_cast<double>(st.min_rtt);
      }
      for (const auto& rc : spec.truth.root_cause_flows) {
        if (st.tuple == rc && st.complete()) {
          r.avg_burst_fct_us += static_cast<double>(st.fct()) / 1e3;
          ++bursts;
        }
      }
    }
  }
  if (bursts > 0) r.avg_burst_fct_us /= bursts;
  return r;
}

}  // namespace

int main() {
  print_header("Extension", "congestion control vs PFC (incast trace)");
  std::printf("%-10s %-14s %-20s %-16s\n", "CC", "PAUSE frames",
              "victim max/min RTT", "burst FCT (us)");
  struct Row {
    const char* name;
    device::CcAlgorithm algo;
  };
  const Row rows[] = {{"none", device::CcAlgorithm::kNone},
                      {"dcqcn", device::CcAlgorithm::kDcqcn},
                      {"timely", device::CcAlgorithm::kTimely}};
  const int n = seeds_per_point(3);
  for (const Row& row : rows) {
    double pauses = 0, ratio = 0, fct = 0;
    for (int s = 1; s <= n; ++s) {
      const CcResult r = run_case(row.algo, static_cast<std::uint64_t>(s));
      pauses += static_cast<double>(r.pause_frames);
      ratio += r.victim_max_over_min_rtt;
      fct += r.avg_burst_fct_us;
    }
    std::printf("%-10s %-14.1f %-20.1f %-16.1f\n", row.name, pauses / n,
                ratio / n, fct / n);
  }
  std::printf("\nExpected: CC reduces PAUSE frames and victim impact but\n"
              "never eliminates them — the crafted bursts start at line\n"
              "rate faster than any feedback loop can react.\n");
  return 0;
}
