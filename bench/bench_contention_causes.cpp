// Extension experiment (paper §3.5.2, called orthogonal there): classify
// the *cause* of flow contention at the diagnosed initial port — incast
// fan-in vs ECMP hash imbalance vs a dominating elephant flow — using the
// contributing flows' endpoints and the ECMP-group traffic ratio computed
// from the collected telemetry.
#include "bench_common.hpp"
#include "diagnosis/contention_cause.hpp"
#include "eval/testbed.hpp"
#include "provenance/builder.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

void run_case(const char* label, diagnosis::AnomalyType type,
              bool imbalance_variant, std::uint64_t seed) {
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = imbalance_variant ? workload::make_ecmp_imbalance(probe, pr, rng)
                             : workload::make_scenario(type, probe, pr, rng);
  }
  eval::Testbed::Options opts;
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(opts);
  tb.install(spec);
  tb.run_for(spec.duration + sim::us(300));

  const collect::Episode* ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim &&
        cand->triggered_at >= spec.anomaly_start && ep == nullptr) {
      ep = cand;
    }
  }
  if (ep == nullptr) {
    std::printf("%-18s seed=%llu  (no episode)\n", label,
                static_cast<unsigned long long>(seed));
    return;
  }
  const auto g = provenance::build_provenance(*ep, tb.ft.topo);
  const auto dx = diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim);
  const auto cause =
      diagnosis::analyze_contention_cause(g, tb.ft.topo, tb.routing, dx);
  std::printf("%-18s seed=%llu  type=%-22s cause=%-14s imbalance=%.2f srcs=%d\n",
              label, static_cast<unsigned long long>(seed),
              std::string(to_string(dx.type)).c_str(),
              std::string(to_string(cause.cause)).c_str(),
              cause.ecmp_imbalance_ratio, cause.distinct_sources);
}

}  // namespace

int main() {
  print_header("Extension", "contention-cause classification");
  std::printf("%-18s %-8s %-28s %-20s\n", "scenario", "", "", "");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    run_case("incast", diagnosis::AnomalyType::kMicroBurstIncast, false, seed);
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    run_case("ecmp-imbalance", diagnosis::AnomalyType::kNormalContention,
             true, seed);
  }
  std::printf("\nExpected: incast traces classify as 'incast' (fan-in of\n"
              "distinct sources); skew traces classify as 'ecmp-imbalance'\n"
              "with a hot-uplink ratio well above 1.\n");
  return 0;
}
