// Path-churn diagnosis sweep (PR 4): accuracy vs link-flap rate with the
// routing layer frozen (hold-down 0, the pre-reconvergence behaviour) vs
// reconverging (50 us hold-down: flapped ports are withdrawn from ECMP
// after the dampening timer and restored after the link heals).
//
// Each flap train targets the victim's mid-path link (the runner binds the
// unbound placeholder spec), so the victim's route genuinely churns when
// reconvergence is on — the detection agent must re-derive expected-hop
// coverage across the reroute and the provenance/diagnosis layers must
// honour the collection contract of the churned path.
//
// Classification per run (victim-path-aware, like bench_dataplane):
//   correct          — true positive despite the churn
//   degraded         — wrong/missing verdict, explicitly flagged
//   fault_attributed — wrong/missing verdict, but a flap genuinely bit the
//                      victim's forwarding path
//   misclassified/missed — silently wrong; must NEVER happen
//
// Acceptance bar (exit 1 on violation):
//   1. zero silently-wrong verdicts at every point, both modes;
//   2. reconvergence-enabled accuracy >= frozen accuracy at every flap
//      rate (withdrawing dead ports must not make diagnosis worse).
//
// Results go to BENCH_pathchurn.json (HAWKEYE_BENCH_JSON overrides).
// `--smoke` shrinks the grid for CI: one seed, one flap period.
#include <cstring>

#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct ChurnStats {
  int correct = 0, degraded = 0, fault_attributed = 0;
  int misclassified = 0, missed = 0;
  int runs = 0, churned_runs = 0;
  double routing_epochs = 0, link_down_drops = 0, coverage = 0, confidence = 0;

  void add(const eval::RunResult& r) {
    ++runs;
    if (r.path_churned) ++churned_runs;
    routing_epochs += static_cast<double>(r.routing_epochs);
    link_down_drops += static_cast<double>(r.link_down_drops);
    coverage += r.collection_coverage;
    confidence += r.confidence;
    if (r.tp) {
      ++correct;
    } else if (r.degraded) {
      ++degraded;
    } else if (r.dataplane_fault_fired && r.fault_on_victim_path) {
      ++fault_attributed;
    } else if (r.fp) {
      ++misclassified;
    } else {
      ++missed;
    }
  }
  int silent() const { return misclassified + missed; }
  double accuracy() const {
    return runs == 0 ? 0 : static_cast<double>(correct) / runs;
  }
  double avg(double sum) const { return runs == 0 ? 0 : sum / runs; }
};

fault::FaultPlan churn_plan(sim::Time period, sim::Time holddown) {
  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;  // unbound: the runner pins it to the victim path
  flap.start = sim::us(100);
  flap.down_ns = sim::us(100);
  flap.period_ns = period;
  flap.jitter = 0.5;
  flap.holddown_ns = holddown;
  plan.link_flaps.push_back(flap);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header("Path churn", "diagnosis accuracy vs flap rate, frozen vs "
                             "reconverging routing");
  const int n = smoke ? 1 : seeds_per_point();
  const sim::Time holddown = sim::us(50);

  const std::vector<sim::Time> periods =
      smoke ? std::vector<sim::Time>{sim::us(500)}
            : std::vector<sim::Time>{sim::us(1000), sim::us(500), sim::us(250)};

  std::string json =
      "{\n  \"bench\": \"path_churn\",\n  \"seeds_per_point\": " +
      std::to_string(n) +
      ",\n  \"holddown_us\": " + std::to_string(holddown / 1000) +
      ",\n  \"points\": [\n";
  bool first_point = true;
  int silent_total = 0;
  bool ordering_violated = false;

  for (const sim::Time period : periods) {
    const double period_us = static_cast<double>(period) / 1000.0;
    ChurnStats mode_total[2];
    for (const int reconverge : {0, 1}) {
      const char* mode = reconverge ? "reconverge" : "frozen";
      std::printf("\n--- flap period %g us, %s routing ---\n", period_us,
                  mode);
      std::printf("%-26s %-8s %-9s %-12s %-8s %-7s %-9s %-8s\n", "scenario",
                  "correct", "degraded", "fault_attr", "silent", "churned",
                  "coverage", "epochs");
      for (const auto type : all_anomalies()) {
        eval::RunConfig cfg;
        cfg.scenario = type;
        cfg.faults = churn_plan(period, reconverge ? holddown : 0);
        ChurnStats st;
        std::string name;
        for (const eval::RunResult& r :
             eval::run_sweep(eval::seed_sweep(cfg, n))) {
          st.add(r);
          mode_total[reconverge].add(r);
          name = r.scenario_name;
        }
        std::printf("%-26s %-8d %-9d %-12d %-8d %-7d %-9.2f %-8.1f\n",
                    name.c_str(), st.correct, st.degraded,
                    st.fault_attributed, st.silent(), st.churned_runs,
                    st.avg(st.coverage), st.avg(st.routing_epochs));
        if (!first_point) json += ",\n";
        first_point = false;
        json += "    {\"flap_period_us\": " + std::to_string(period_us) +
                ", \"mode\": \"" + mode + "\"" +  //
                ", \"scenario\": \"" + name + "\"" +
                ", \"correct\": " + std::to_string(st.correct) +
                ", \"degraded\": " + std::to_string(st.degraded) +
                ", \"fault_attributed\": " +
                std::to_string(st.fault_attributed) +
                ", \"misclassified\": " + std::to_string(st.misclassified) +
                ", \"missed\": " + std::to_string(st.missed) +
                ", \"runs\": " + std::to_string(st.runs) +
                ", \"churned_runs\": " + std::to_string(st.churned_runs) +
                ", \"avg_routing_epochs\": " +
                std::to_string(st.avg(st.routing_epochs)) +
                ", \"avg_link_down_drops\": " +
                std::to_string(st.avg(st.link_down_drops)) +
                ", \"avg_coverage\": " + std::to_string(st.avg(st.coverage)) +
                ", \"avg_confidence\": " +
                std::to_string(st.avg(st.confidence)) + "}";
      }
      std::printf("%-26s %-8d %-9d %-12d %-8d %-7d %-9.2f %-8.1f\n", "TOTAL",
                  mode_total[reconverge].correct,
                  mode_total[reconverge].degraded,
                  mode_total[reconverge].fault_attributed,
                  mode_total[reconverge].silent(),
                  mode_total[reconverge].churned_runs,
                  mode_total[reconverge].avg(mode_total[reconverge].coverage),
                  mode_total[reconverge].avg(
                      mode_total[reconverge].routing_epochs));
      silent_total += mode_total[reconverge].silent();
    }
    std::printf("\nflap period %g us: frozen accuracy %.3f, reconverge "
                "accuracy %.3f\n",
                period_us, mode_total[0].accuracy(), mode_total[1].accuracy());
    if (mode_total[1].correct < mode_total[0].correct) {
      ordering_violated = true;
      std::printf("ORDERING VIOLATION at flap period %g us\n", period_us);
    }
  }
  json += "\n  ]\n}\n";

  const char* path = std::getenv("HAWKEYE_BENCH_JSON");
  const std::string out = path != nullptr ? path : "BENCH_pathchurn.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }
  int rc = 0;
  if (silent_total > 0) {
    std::printf("FAIL: %d silently-wrong verdict(s) under path churn\n",
                silent_total);
    rc = 1;
  }
  if (ordering_violated) {
    std::printf("FAIL: reconvergence-enabled accuracy fell below frozen "
                "routing at some flap rate\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("OK: no silent misses; reconvergence never hurts accuracy\n");
  }
  return rc;
}
