// Robustness sweep: diagnosis accuracy vs collection-pipeline fault rate.
//
// The fault-injection substrate drops each polling packet (and causality
// clone) with probability p at every switch; the self-healing pipeline
// (re-poll with capped exponential backoff, coverage tracking) has to
// recover. Each run is classified as
//   correct       — true positive despite the faults
//   degraded      — wrong/missing verdict, but explicitly flagged degraded
//                   (the operator knows not to trust it)
//   misclassified — wrong verdict presented with full confidence (the
//                   failure mode the pipeline exists to prevent)
//   missed        — no verdict and no degraded flag
// Results go to BENCH_robustness.json (HAWKEYE_BENCH_JSON overrides) as the
// accuracy-degradation curve tracked across PRs.
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct RobustStats {
  int correct = 0, degraded = 0, misclassified = 0, missed = 0;
  int runs = 0;
  double coverage = 0, confidence = 0, repolls = 0, polling_drops = 0;

  void add(const eval::RunResult& r) {
    ++runs;
    coverage += r.collection_coverage;
    confidence += r.confidence;
    repolls += static_cast<double>(r.repolls);
    polling_drops += static_cast<double>(r.polling_drops);
    if (r.tp) {
      ++correct;
    } else if (r.degraded) {
      ++degraded;
    } else if (r.fp) {
      ++misclassified;
    } else {
      ++missed;
    }
  }
  double avg(double sum) const { return runs == 0 ? 0 : sum / runs; }
};

}  // namespace

int main() {
  print_header("Robustness", "diagnosis accuracy vs polling-loss rate");
  const int n = seeds_per_point();
  const double rates[] = {0.0, 0.05, 0.10, 0.20, 0.30};

  std::string json = "{\n  \"bench\": \"robustness\",\n  \"seeds_per_point\": " +
                     std::to_string(n) + ",\n  \"points\": [\n";
  bool first_point = true;

  for (const double rate : rates) {
    std::printf("\n--- polling drop rate %.0f%% ---\n", rate * 100);
    std::printf("%-26s %-8s %-9s %-14s %-7s %-9s %-11s %-8s\n", "scenario",
                "correct", "degraded", "misclassified", "missed", "coverage",
                "confidence", "repolls");
    RobustStats total;
    for (const auto type : all_anomalies()) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      if (rate > 0) {
        cfg.faults = fault::FaultPlan::uniform_poll_loss(rate, 1);
      }
      RobustStats st;
      std::string name;
      for (const eval::RunResult& r :
           eval::run_sweep(eval::seed_sweep(cfg, n))) {
        st.add(r);
        total.add(r);
        name = r.scenario_name;
      }
      std::printf("%-26s %-8d %-9d %-14d %-7d %-9.2f %-11.2f %-8.2f\n",
                  name.c_str(), st.correct, st.degraded, st.misclassified,
                  st.missed, st.avg(st.coverage), st.avg(st.confidence),
                  st.avg(st.repolls));
      if (!first_point) json += ",\n";
      first_point = false;
      json += "    {\"drop_rate\": " + std::to_string(rate) +
              ", \"scenario\": \"" + name + "\"" +
              ", \"correct\": " + std::to_string(st.correct) +
              ", \"degraded\": " + std::to_string(st.degraded) +
              ", \"misclassified\": " + std::to_string(st.misclassified) +
              ", \"missed\": " + std::to_string(st.missed) +
              ", \"runs\": " + std::to_string(st.runs) +
              ", \"avg_coverage\": " + std::to_string(st.avg(st.coverage)) +
              ", \"avg_confidence\": " + std::to_string(st.avg(st.confidence)) +
              ", \"avg_repolls\": " + std::to_string(st.avg(st.repolls)) +
              ", \"avg_polling_drops\": " +
              std::to_string(st.avg(st.polling_drops)) + "}";
    }
    std::printf("%-26s %-8d %-9d %-14d %-7d %-9.2f %-11.2f %-8.2f\n", "TOTAL",
                total.correct, total.degraded, total.misclassified,
                total.missed, total.avg(total.coverage),
                total.avg(total.confidence), total.avg(total.repolls));
  }
  json += "\n  ]\n}\n";

  const char* path = std::getenv("HAWKEYE_BENCH_JSON");
  const std::string out = path != nullptr ? path : "BENCH_robustness.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }
  return 0;
}
