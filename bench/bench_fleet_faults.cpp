// Fleet-ops fault-class matrix: signature-level diagnosis of the silent
// failure modes a fleet operator actually chases — degraded (CRC-erroring)
// cables, mis-negotiated link speeds, host-side PCIe drain bottlenecks and
// oversubscribed down-link tiers — across traffic patterns and injected
// severities.
//
// Matrix axes:
//   class    — the four fleet fault classes (one Table-2 signature row
//              each; see DESIGN.md §13)
//   workload — crafted §4.1 shape, RPC client/server mesh, all-to-all
//              shuffle (net_sanitizer's application patterns)
//   severity — scales the injected defect (RunConfig::fleet_severity):
//              milder and harsher than each scenario's default
//
// Each run is scored against the scenario's fault truth:
//   correct       — the class's own verdict, localized to the sick
//                   component (the erroring link / slow port / drain-bound
//                   NIC / reduced tier)
//   degraded      — wrong/missing verdict explicitly flagged degraded
//                   (the fault also ate telemetry, and collection said so)
//   misclassified — wrong verdict at full confidence
//   missed        — no verdict at all, nothing flagged
//
// Acceptance bar (exit 1 on violation): ZERO silently-wrong verdicts —
// misclassified + missed must be zero in every cell, at every severity.
// Results go to BENCH_fleetfaults.json (HAWKEYE_BENCH_JSON overrides).
//
// `--smoke` shrinks the grid for CI: one seed, default severity only.
#include <cstring>

#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

const std::vector<diagnosis::AnomalyType>& fleet_classes() {
  static const std::vector<diagnosis::AnomalyType> kClasses = {
      diagnosis::AnomalyType::kDegradedLink,
      diagnosis::AnomalyType::kLinkSpeedMismatch,
      diagnosis::AnomalyType::kHostPcieBottleneck,
      diagnosis::AnomalyType::kOversubscribedDownlink,
  };
  return kClasses;
}

struct FleetStats {
  int correct = 0, degraded = 0, misclassified = 0, missed = 0;
  int runs = 0;
  double confidence = 0, coverage = 0;
  double crc_drops = 0, retransmissions = 0, rate_limited = 0,
         drain_delayed = 0;

  void add(const eval::RunResult& r) {
    ++runs;
    confidence += r.confidence;
    coverage += r.collection_coverage;
    crc_drops += static_cast<double>(r.crc_drops);
    retransmissions += static_cast<double>(r.retransmissions);
    rate_limited += static_cast<double>(r.rate_limited_pkts);
    drain_delayed += static_cast<double>(r.host_drain_delayed);
    if (r.tp) {
      ++correct;
    } else if (r.degraded) {
      ++degraded;
    } else if (r.fp) {
      ++misclassified;
    } else {
      ++missed;
    }
  }
  int silent() const { return misclassified + missed; }
  double avg(double sum) const { return runs == 0 ? 0 : sum / runs; }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header("Fleet-ops fault classes",
               "signature-level diagnosis of silent fleet failures");
  const int n = smoke ? 1 : seeds_per_point();

  const std::vector<workload::FleetWorkload> workloads = {
      workload::FleetWorkload::kCrafted,
      workload::FleetWorkload::kRpcClientServer,
      workload::FleetWorkload::kAllToAll,
  };
  const std::vector<double> severities =
      smoke ? std::vector<double>{1.0} : std::vector<double>{0.5, 1.0, 2.0};

  std::string json =
      "{\n  \"bench\": \"fleet_faults\",\n  \"seeds_per_point\": " +
      std::to_string(n) + ",\n  \"cells\": [\n";
  bool first = true;
  int silent_total = 0;

  for (const double sev : severities) {
    std::printf("\n--- severity x%g ---\n", sev);
    std::printf("%-26s %-11s %-8s %-9s %-14s %-7s %-11s\n", "class",
                "workload", "correct", "degraded", "misclassified", "missed",
                "confidence");
    for (const auto type : fleet_classes()) {
      for (const auto w : workloads) {
        eval::RunConfig cfg;
        cfg.scenario = type;
        cfg.fleet_workload = w;
        cfg.fleet_severity = sev;
        FleetStats st;
        std::string name;
        for (const eval::RunResult& r :
             eval::run_sweep(eval::seed_sweep(cfg, n))) {
          st.add(r);
          name = r.scenario_name;
        }
        std::printf("%-26s %-11s %-8d %-9d %-14d %-7d %-11.2f\n",
                    name.c_str(),
                    std::string(workload::to_string(w)).c_str(), st.correct,
                    st.degraded, st.misclassified, st.missed,
                    st.avg(st.confidence));
        silent_total += st.silent();
        if (!first) json += ",\n";
        first = false;
        json += "    {\"class\": \"" +
                std::string(diagnosis::to_string(type)) + "\"" +
                ", \"workload\": \"" +
                std::string(workload::to_string(w)) + "\"" +
                ", \"severity\": " + std::to_string(sev) +
                ", \"correct\": " + std::to_string(st.correct) +
                ", \"degraded\": " + std::to_string(st.degraded) +
                ", \"misclassified\": " + std::to_string(st.misclassified) +
                ", \"missed\": " + std::to_string(st.missed) +
                ", \"runs\": " + std::to_string(st.runs) +
                ", \"avg_confidence\": " +
                std::to_string(st.avg(st.confidence)) +
                ", \"avg_coverage\": " + std::to_string(st.avg(st.coverage)) +
                ", \"avg_crc_drops\": " + std::to_string(st.avg(st.crc_drops)) +
                ", \"avg_retransmissions\": " +
                std::to_string(st.avg(st.retransmissions)) +
                ", \"avg_rate_limited\": " +
                std::to_string(st.avg(st.rate_limited)) +
                ", \"avg_drain_delayed\": " +
                std::to_string(st.avg(st.drain_delayed)) + "}";
      }
    }
  }
  json += "\n  ]\n}\n";

  const char* path = std::getenv("HAWKEYE_BENCH_JSON");
  const std::string out = path != nullptr ? path : "BENCH_fleetfaults.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }
  if (silent_total > 0) {
    std::printf("FAIL: %d silently-wrong verdict(s) — every fleet-fault run "
                "must end in its class's own verdict or a flagged-degraded "
                "collection\n",
                silent_total);
    return 1;
  }
  std::printf("OK: no silently-wrong verdicts in any cell\n");
  return 0;
}
