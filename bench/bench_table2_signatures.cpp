// Table 2: representative anomaly signatures — one crafted trace per row,
// verifying that the provenance graph matches the intended signature and
// names the intended root cause class.
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Table 2", "representative signatures");
  std::printf("%-34s %-22s %-34s %s\n", "anomaly", "root cause class",
              "diagnosed", "match");
  struct Row {
    diagnosis::AnomalyType type;
    const char* root_class;
  };
  const Row rows[] = {
      {diagnosis::AnomalyType::kMicroBurstIncast,
       "flow contention (bursts)"},
      {diagnosis::AnomalyType::kInLoopDeadlock, "flow contention"},
      {diagnosis::AnomalyType::kOutOfLoopDeadlockContention,
       "flow contention"},
      {diagnosis::AnomalyType::kOutOfLoopDeadlockInjection,
       "host PFC injection"},
      {diagnosis::AnomalyType::kPfcStorm, "host PFC injection"},
      {diagnosis::AnomalyType::kNormalContention, "flow contention"},
  };
  const int n = seeds_per_point(2);
  for (const Row& r : rows) {
    eval::RunConfig cfg;
    cfg.scenario = r.type;
    const PointStats st = run_point(cfg, n, /*seed0=*/2);
    std::printf("%-34s %-22s %-34s %d/%d\n",
                std::string(to_string(r.type)).c_str(), r.root_class,
                "per-run diagnosis scored", st.pr.tp, st.runs);
  }
  return 0;
}
