// Figure 8: upper-bound precision & recall of Hawkeye vs baselines
// (full polling, victim-only, SpiderMon, NetSight), per anomaly type,
// each method at its optimal parameters.
//
// Expected shape (paper §4.2): Hawkeye ≈ full polling ≈ 1.0 everywhere;
// victim-only collapses on deadlocks (incomplete loop provenance);
// SpiderMon/NetSight ≈ 0 on PFC-related anomalies but fine on plain
// contention (no PFC vocabulary in their diagnosis).
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Figure 8", "precision & recall upper bound vs baselines");
  const int n = seeds_per_point();
  const eval::Method methods[] = {
      eval::Method::kHawkeye, eval::Method::kFullPolling,
      eval::Method::kVictimOnly, eval::Method::kSpiderMon,
      eval::Method::kNetSight};

  for (const auto type : all_anomalies()) {
    std::printf("\n--- %s ---\n", std::string(to_string(type)).c_str());
    std::printf("%-14s %-10s %-8s\n", "method", "precision", "recall");
    for (const auto m : methods) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.method = m;
      cfg.epoch_shift = 17;  // optimal parameters (fine epochs)
      cfg.threshold_factor = 3.0;
      const PointStats st = run_point(cfg, n);
      std::printf("%-14s %-10.2f %-8.2f\n",
                  std::string(to_string(m)).c_str(), st.pr.precision(),
                  st.pr.recall());
    }
  }
  return 0;
}
