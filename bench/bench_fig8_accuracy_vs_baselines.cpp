// Figure 8: upper-bound precision & recall of Hawkeye vs baselines
// (full polling, victim-only, SpiderMon, NetSight), per anomaly type,
// each method at its optimal parameters.
//
// Expected shape (paper §4.2): Hawkeye ≈ full polling ≈ 1.0 everywhere;
// victim-only collapses on deadlocks (incomplete loop provenance);
// SpiderMon/NetSight ≈ 0 on PFC-related anomalies but fine on plain
// contention (no PFC vocabulary in their diagnosis).
//
// PR 4 addition: per-method accuracy-vs-confidence-threshold curves.
// Every run carries RunResult::confidence (collection-quality discounts);
// sweeping the assertion threshold τ shows whether confidence is a useful
// gate — runs the method would still assert at high τ should be MORE
// accurate, never less. Curves land in BENCH_fig8.json next to the
// per-scenario precision/recall table (HAWKEYE_BENCH_JSON overrides).
//
// Fault rounds: fault-free runs all collect perfectly, so every sample
// lands at confidence 1.0 and the τ-sweep is a flat line — it cannot show
// whether the gate separates anything. Three faulted rounds (polling
// loss, DMA snapshot failure, a link-flap train on the victim path) feed
// the same curves with genuinely degraded collections; the curve earns
// its knee only if low-confidence verdicts are in fact less accurate.
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

/// One τ-sweep round: a fault-axis label and the plan that drives it.
struct FaultRound {
  const char* name;
  fault::FaultPlan plan;
};

std::vector<FaultRound> fault_rounds() {
  std::vector<FaultRound> rounds;
  rounds.push_back({"none", {}});
  {
    fault::FaultPlan plan;
    fault::PollFaultSpec poll;  // every switch eats 30% of polling packets
    poll.drop_prob = 0.3;
    plan.poll_faults.push_back(poll);
    rounds.push_back({"polling-loss", plan});
  }
  {
    fault::FaultPlan plan;
    fault::DmaFaultSpec dma;  // switch-CPU snapshots fail or arrive stale
    dma.fail_prob = 0.3;
    dma.stale_prob = 0.2;
    plan.dma_faults.push_back(dma);
    rounds.push_back({"dma-failure", plan});
  }
  {
    fault::FaultPlan plan;
    fault::LinkFlapSpec flap;  // unbound: the runner pins it to the victim path
    flap.start = sim::us(100);
    flap.down_ns = sim::us(100);
    flap.period_ns = sim::us(500);
    flap.jitter = 0.5;
    plan.link_flaps.push_back(flap);
    rounds.push_back({"flap-train", plan});
  }
  return rounds;
}

}  // namespace

int main() {
  print_header("Figure 8", "precision & recall upper bound vs baselines");
  const int n = seeds_per_point();
  const eval::Method methods[] = {
      eval::Method::kHawkeye, eval::Method::kFullPolling,
      eval::Method::kVictimOnly, eval::Method::kSpiderMon,
      eval::Method::kNetSight};

  // One curve per method, accumulated across every scenario AND every
  // fault round: the threshold gate is a property of the method's
  // confidence signal, not of one anomaly type or of a clean fabric.
  eval::ConfidenceCurve curves[std::size(methods)];

  std::string json = "{\n  \"bench\": \"fig8\",\n  \"seeds_per_point\": " +
                     std::to_string(n) + ",\n  \"points\": [\n";
  bool first_point = true;

  for (const FaultRound& round : fault_rounds()) {
    for (const auto type : all_anomalies()) {
      std::printf("\n--- %s (faults: %s) ---\n",
                  std::string(to_string(type)).c_str(), round.name);
      std::printf("%-14s %-10s %-8s %-11s\n", "method", "precision", "recall",
                  "confidence");
      for (std::size_t mi = 0; mi < std::size(methods); ++mi) {
        eval::RunConfig cfg;
        cfg.scenario = type;
        cfg.method = methods[mi];
        cfg.epoch_shift = 17;  // optimal parameters (fine epochs)
        cfg.threshold_factor = 3.0;
        cfg.faults = round.plan;
        PointStats st;
        double confidence = 0;
        for (const eval::RunResult& r :
             eval::run_sweep(eval::seed_sweep(cfg, n))) {
          st.add(r);
          confidence += r.confidence;
          curves[mi].add(r.confidence, r.tp);
        }
        std::printf("%-14s %-10.2f %-8.2f %-11.2f\n",
                    std::string(to_string(methods[mi])).c_str(),
                    st.pr.precision(), st.pr.recall(), st.avg(confidence));
        if (!first_point) json += ",\n";
        first_point = false;
        json += "    {\"scenario\": \"" + std::string(to_string(type)) + "\"" +
                ", \"method\": \"" + std::string(to_string(methods[mi])) +
                "\"" + ", \"faults\": \"" + round.name + "\"" +
                ", \"precision\": " + std::to_string(st.pr.precision()) +
                ", \"recall\": " + std::to_string(st.pr.recall()) +
                ", \"avg_confidence\": " + std::to_string(st.avg(confidence)) +
                ", \"runs\": " + std::to_string(st.runs) + "}";
      }
    }
  }
  json += "\n  ],\n  \"confidence_curves\": [\n";

  std::printf("\n--- accuracy vs confidence threshold τ (all scenarios) ---\n");
  std::printf("%-14s", "method");
  for (int i = 0; i <= 10; ++i) std::printf(" τ>=%.1f", i / 10.0);
  std::printf("\n");
  for (std::size_t mi = 0; mi < std::size(methods); ++mi) {
    const auto pts = curves[mi].points(10);
    std::printf("%-14s", std::string(to_string(methods[mi])).c_str());
    for (const auto& p : pts) std::printf(" %6.2f", p.accuracy());
    std::printf("\n");
    if (mi > 0) json += ",\n";
    json += "    {\"method\": \"" + std::string(to_string(methods[mi])) +
            "\", \"points\": [";
    for (std::size_t pi = 0; pi < pts.size(); ++pi) {
      if (pi > 0) json += ", ";
      json += "{\"threshold\": " + std::to_string(pts[pi].threshold) +
              ", \"asserted\": " + std::to_string(pts[pi].asserted) +
              ", \"correct\": " + std::to_string(pts[pi].correct) +
              ", \"accuracy\": " + std::to_string(pts[pi].accuracy()) + "}";
    }
    json += "]}";
  }
  json += "\n  ]\n}\n";

  const char* path = std::getenv("HAWKEYE_BENCH_JSON");
  const std::string out = path != nullptr ? path : "BENCH_fig8.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }
  return 0;
}
