// Figure 9: (a) processing overhead — telemetry bytes collected for one
// diagnosis; (b) monitoring bandwidth overhead — extra in-band traffic a
// method adds to the fabric during the trace.
//
// Expected shape (paper §4.3): NetSight ≫ full polling > Hawkeye >
// victim-only ≈ SpiderMon on processing; on bandwidth, NetSight (postcards
// per packet-hop) ≫ SpiderMon (per-packet header) ≫ Hawkeye/victim-only
// (a handful of 64 B polling packets), full polling = 0.
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Figure 9", "processing & bandwidth overhead vs baselines");
  const int n = seeds_per_point(2);
  const eval::Method methods[] = {
      eval::Method::kHawkeye, eval::Method::kFullPolling,
      eval::Method::kVictimOnly, eval::Method::kSpiderMon,
      eval::Method::kNetSight};

  // Averaged over the PFC-related anomaly scenarios (the paper's focus).
  std::printf("\n(a) telemetry collected per diagnosis   (b) monitoring bandwidth per trace\n");
  std::printf("%-14s %-16s %-18s %-16s\n", "method", "telemetry",
              "report packets", "monitor bw");
  for (const auto m : methods) {
    PointStats agg;
    for (const auto type : all_anomalies()) {
      if (type == diagnosis::AnomalyType::kNormalContention) continue;
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.method = m;
      const PointStats st = run_point(cfg, n);
      agg.pr.tp += st.pr.tp;
      agg.runs += st.runs;
      agg.telemetry_bytes += st.telemetry_bytes;
      agg.report_packets += st.report_packets;
      agg.monitor_bw_bytes += st.monitor_bw_bytes;
    }
    std::printf("%-14s %-16s %-18.1f %-16s\n",
                std::string(to_string(m)).c_str(),
                human_bytes(agg.avg(agg.telemetry_bytes)).c_str(),
                agg.avg(agg.report_packets),
                human_bytes(agg.avg(agg.monitor_bw_bytes)).c_str());
  }
  std::printf("\nNote: full-polling sends no polling packets (0 bandwidth) but\n"
              "collects every switch; NetSight's postcards dominate both axes.\n");
  return 0;
}
